//! Mixed-fleet drill: two SGX hosts and two SEV-SNP confidential-VM hosts
//! enrolled through the same Verification Manager, one SNP host refused
//! for a debug guest policy, then CA rotation, CRL distribution, and
//! crash recovery exercised across both backend populations — narrated.
//!
//! ```text
//! cargo run --example mixed_fleet
//! ```

use vnfguard::attest::snp::SnpFault;
use vnfguard::attest::BackendKind;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::pki::crl::RevocationReason;

fn main() {
    // Hosts 0–1 default to SGX/EPID; hosts 2–3 boot as SEV-SNP CVMs.
    let mut tb = TestbedBuilder::new(b"mixed fleet drill")
        .hosts(4)
        .host_backend(2, BackendKind::SevSnp)
        .host_backend(3, BackendKind::SevSnp)
        .durable()
        .renewal_window(86_000)
        .build();
    let names = ["vnf-fw", "vnf-nat", "vnf-dpi", "vnf-lb"];

    println!("== phase 1: one SNP host boots with the debug bit set — refused ==");
    // Arm the guest-policy fault before host 3 ever attests: its evidence
    // carries POLICY_DEBUG_BIT, which no appraisal policy waives.
    tb.hosts[3]
        .snp
        .as_mut()
        .expect("host 3 is SNP")
        .set_fault(Some(SnpFault::DebugPolicy));
    for i in 0..3 {
        let verdict = tb.attest_host(i).unwrap();
        println!(
            "  host-{i} ({}) attested: {verdict:?}",
            tb.hosts[i].backend.label()
        );
    }
    let err = tb.attest_host(3).unwrap_err();
    println!("  host-3 (snp) refused: {err}");

    println!("== phase 2: the operator reprovisions host-3 without debug ==");
    tb.hosts[3].snp.as_mut().unwrap().set_fault(None);
    let verdict = tb.attest_host(3).unwrap();
    println!("  host-3 (snp) re-attested clean: {verdict:?}");

    println!("== phase 3: enroll one VNF per host through the generic path ==");
    let mut guards = Vec::new();
    let mut serials = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let guard = tb.deploy_guard(i, name, 1).unwrap();
        let certificate = tb.enroll(i, &guard).unwrap();
        println!(
            "  {name} on host-{i} ({}): serial {}",
            tb.hosts[i].backend.label(),
            certificate.serial()
        );
        serials.push(certificate.serial());
        guards.push(guard);
    }

    println!("== phase 4: rotate the CA — both populations renew onto the new root ==");
    let rotation = tb.rotate_ca().unwrap();
    tb.distribute_ca(&rotation).unwrap();
    tb.clock.advance(1);
    for ((guard, serial), name) in guards.iter().zip(serials.iter_mut()).zip(names) {
        *serial = tb.renew(guard, *serial).unwrap().serial();
        println!("  {name}: renewed under epoch {} (serial {serial})", rotation.epoch);
    }
    let retired = tb.retire_previous_roots();
    println!("  {retired} old root retired; dual-trust window closed");

    println!("== phase 5: revoke one VNF per backend; the CRL reaches everyone ==");
    for victim in [0usize, 2] {
        tb.vm
            .revoke_credential(serials[victim], RevocationReason::KeyCompromise)
            .unwrap();
    }
    tb.push_crl().unwrap();
    tb.clock.advance(1);
    for (i, name) in names.iter().enumerate() {
        match tb.open_session(&mut guards[i]) {
            Ok(session) => {
                println!("  {name} ({}): session {session} up", tb.hosts[i].backend.label());
                guards[i].close_session(session).unwrap();
            }
            Err(e) => println!("  {name} ({}): refused — {e}", tb.hosts[i].backend.label()),
        }
    }

    println!("== phase 6: crash the manager; recovery re-attests per recorded backend ==");
    let report = tb.recover_vm().unwrap();
    println!(
        "  recovered generation {} ({} records replayed); attestations are \
         deliberately dropped",
        report.generation, report.replayed_records
    );
    for i in [1usize, 3] {
        tb.attest_host(i).unwrap();
        let guard = tb.deploy_guard(i, &format!("post-crash-{i}"), 1).unwrap();
        let certificate = tb.enroll(i, &guard).unwrap();
        println!(
            "  host-{i} ({}) re-attested with the backend it enrolled under; \
             new serial {}",
            tb.hosts[i].backend.label(),
            certificate.serial()
        );
    }

    println!("Both TEE populations enrolled, rotated, revoked, and recovered through one manager.");
}
