//! Lifecycle drill: a fleet enrolled, renewed without re-enrollment, the
//! CA rotated mid-fleet with a cross-signed dual-trust window, one VNF
//! revoked and evicted through the distributed CRL — narrated. The
//! manager runs as two shards behind a `VmService` handle: renewals and
//! revocations route by serial to the owning shard, while rotation and
//! CRL issuance stay on the authority shard.
//!
//! ```text
//! cargo run --example lifecycle_drill
//! ```

use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::pki::crl::RevocationReason;

fn main() {
    let mut tb = TestbedBuilder::new(b"lifecycle drill")
        .renewal_window(86_000)
        .shards(2)
        .build();
    tb.attest_host(0).unwrap();
    // The service handle: the supported way to talk to the manager fleet
    // (clones cheaply; every call routes to the right shard internally).
    let vm = tb.vm_service();

    println!("== phase 1: enroll a fleet of three VNFs ==");
    let mut guards = Vec::new();
    let mut serials = Vec::new();
    for name in ["vnf-fw", "vnf-nat", "vnf-dpi"] {
        let guard = tb.deploy_guard(0, name, 1).unwrap();
        let certificate = tb.enroll(0, &guard).unwrap();
        println!(
            "  {name}: serial {}, valid until {}",
            certificate.serial(),
            certificate.tbs.validity.not_after
        );
        serials.push(certificate.serial());
        guards.push(guard);
    }

    println!("== phase 2: advance the clock — the sweep flags what's due ==");
    tb.clock.advance(1200);
    let due = vm.certs_expiring();
    println!("  {} credential(s) inside the renewal window", due.len());
    for entry in &due {
        println!(
            "    {} (serial {}, not_after {})",
            entry.vnf_name, entry.serial, entry.not_after
        );
    }

    println!("== phase 3: renew vnf-fw — no second six-step enrollment ==");
    let renewed = tb.renew(&guards[0], serials[0]).unwrap();
    println!(
        "  vnf-fw: serial {} -> {} (host verdict was still fresh)",
        serials[0],
        renewed.serial()
    );
    serials[0] = renewed.serial();

    println!("== phase 4: rotate the CA mid-fleet ==");
    let rotation = tb.rotate_ca().unwrap();
    println!(
        "  epoch {} root cross-signed by the outgoing key; dual trust until {}",
        rotation.epoch, rotation.drain_deadline
    );
    tb.distribute_ca(&rotation).unwrap();
    tb.clock.advance(1);
    for (guard, name) in guards.iter_mut().zip(["vnf-fw", "vnf-nat", "vnf-dpi"]) {
        let session = tb.open_session(guard).unwrap();
        println!("  {name}: session {session} up under dual trust");
        guard.close_session(session).unwrap();
    }
    // Migrate the fleet onto the new root, then close the window.
    for (guard, serial) in guards.iter().zip(serials.iter_mut()) {
        *serial = tb.renew(guard, *serial).unwrap().serial();
    }
    let retired = tb.retire_previous_roots();
    println!("  fleet renewed onto epoch {}; {retired} old root retired", rotation.epoch);

    println!("== phase 5: revoke vnf-dpi and distribute the CRL ==");
    vm.revoke_credential(serials[2], RevocationReason::KeyCompromise)
        .unwrap();
    tb.push_crl().unwrap();
    tb.clock.advance(1);
    match tb.open_session(&mut guards[2]) {
        Err(e) => println!("  vnf-dpi refused at the controller: {e}"),
        Ok(_) => panic!("revoked credential must not open a session"),
    }
    let session = tb.open_session(&mut guards[0]).unwrap();
    println!("  vnf-fw still serving (session {session})");

    let status = vm.lifecycle_status();
    println!(
        "== final: epoch {}, {} active, {} expiring, CRL #{} ({}s old) ==",
        status.epoch,
        status.active,
        status.expiring,
        status.crl_number,
        status.crl_age_secs.unwrap_or(0)
    );
}
