//! Trace drill: one operator-rooted distributed trace following an
//! enrollment across the VM API, the Verification Manager, a retried IAS
//! round-trip, the host agent and the controller — rendered as the ASCII
//! waterfall an operator sees at `GET /vm/traces/{id}?format=ascii`.
//!
//! ```text
//! cargo run --example trace_drill
//! ```

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use vnfguard::controller::{NorthboundClient, SecurityMode};
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::core::remote::{serve_ias, serve_vm_api, HostAgent, HostAgentState, RemoteIas};
use vnfguard::core::resilience::{CircuitBreaker, RetryPolicy};
use vnfguard::ias::QuoteVerifier;
use vnfguard::net::http::Request;
use vnfguard::net::server::HttpClient;
use vnfguard::net::FaultPlan;
use vnfguard::telemetry::Telemetry;

fn main() {
    let telemetry = Telemetry::new();
    let mut tb = TestbedBuilder::new(b"trace drill")
        .mode(SecurityMode::Http)
        .telemetry(telemetry.clone())
        .tracing(1.0)
        .build();
    let network = tb.network.clone();
    let clock = tb.clock.clone();
    let faults = FaultPlan::seeded(3);
    network.install_faults(&faults);

    // Deploy the IAS, the host agent and the VM API as separate services.
    let ias_service = std::mem::replace(
        &mut tb.ias,
        vnfguard::ias::AttestationService::new(b"placeholder"),
    );
    let report_key = ias_service.report_signing_key();
    let (_ias_handle, _shared) = serve_ias(&network, "ias:443", ias_service).unwrap();
    let remote_ias = RemoteIas::new(&network, "ias:443", report_key)
        .with_resilience(
            clock.clone(),
            RetryPolicy::new(6, 1, 8).with_seed(3),
            CircuitBreaker::new(32, 600),
        )
        .with_telemetry(&telemetry);

    let guard = tb.deploy_guard(0, "vnf-traced", 1).unwrap();
    let host = tb.hosts.remove(0);
    let mut guards = HashMap::new();
    guards.insert("vnf-traced".to_string(), Arc::new(guard));
    let state = Arc::new(HostAgentState {
        host_id: host.id.clone(),
        platform: host.platform,
        snp: host.snp,
        container_host: RwLock::new(host.container_host),
        integrity_enclave: host.integrity_enclave,
        tpm: None,
        guards: RwLock::new(guards),
        revoked_serials: RwLock::new(Default::default()),
        vm_hmac_key: Some(tb.vm.share_hmac_key()),
    });
    let agent_clock = clock.clone();
    let _agent =
        HostAgent::serve_traced(&network, state, &telemetry, move || agent_clock.now()).unwrap();

    let vm = tb.vm_service();
    let ias: Arc<Mutex<dyn QuoteVerifier + Send>> = Arc::new(Mutex::new(remote_ias));
    let _api = serve_vm_api(&network, "vm:8443", vm, ias, "controller").unwrap();
    let mut client = HttpClient::new(network.connect("vm:8443").unwrap());

    // The operator's trace root; every request below carries its context.
    let (root, root_span) = telemetry.trace_root("operator", "enrollment_drill", clock.now());
    let root_hex = format!("{:032x}", root.trace_id);
    println!("trace {root_hex} started\n");

    // Refuse the first two IAS connections so retry child spans appear.
    faults.refuse_next("ias:443", 2);

    for path in [
        "/vm/hosts/host-0/attest".to_string(),
        "/vm/hosts/host-0/vnfs/vnf-traced/enroll".to_string(),
    ] {
        let response = client
            .request(&Request::post(&path).with_trace(&root))
            .unwrap();
        println!(
            "POST {path} -> {} (x-vnfguard-trace: {})",
            response.status.code(),
            response.headers.get("x-vnfguard-trace").cloned().unwrap_or_default()
        );
    }

    // One controller hop inside the same trace.
    let mut northbound = NorthboundClient::connect_plain(&network, &tb.controller_addr).unwrap();
    northbound.set_trace_context(Some(root.clone()));
    northbound.summary().unwrap();
    println!("GET /wm/core/controller/summary/json -> 200 (controller hop)\n");

    drop(root_span);

    // What the operator sees at GET /vm/traces/{id}?format=ascii.
    let waterfall = client
        .request(&Request::get(&format!("/vm/traces/{root_hex}?format=ascii")))
        .unwrap();
    println!("GET /vm/traces/{root_hex}?format=ascii\n");
    println!("{}", String::from_utf8(waterfall.body).unwrap());

    let chrome = client
        .request(&Request::get(&format!("/vm/traces/{root_hex}?format=chrome")))
        .unwrap();
    println!(
        "?format=chrome -> {} bytes of trace_event JSON (load in chrome://tracing)",
        chrome.body.len()
    );
}
