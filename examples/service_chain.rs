//! A guarded service chain: enrolled VNFs program the forwarding plane and
//! process traffic through firewall → NAT → load balancer.
//!
//! This exercises the full stack the paper's intro motivates: the VNFs are
//! deployed in containers on an attested host, receive their north-bound
//! credentials through the enclave workflow, program flows on a switch via
//! the controller's REST API — and then the dataplane actually forwards
//! packets through the chain, including a Trusted-Click-style variant where
//! the firewall runs *inside* an enclave.
//!
//! Run with: `cargo run --example service_chain`

use std::net::Ipv4Addr;
use vnfguard::controller::flowspec::FlowSpec;
use vnfguard::core::deployment::TestbedBuilder;
use vnfguard::dataplane::flow::{FlowAction, FlowMatch};
use vnfguard::dataplane::switch::Switch;
use vnfguard::dataplane::wire::{build_udp_frame, EthernetFrame, Ipv4Packet, MacAddr, Protocol};
use vnfguard::encoding::Json;
use vnfguard::net::http::Request;
use vnfguard::sgx::sigstruct::EnclaveAuthor;
use vnfguard::vnf::nf::{
    decode_verdict, load_enclave_nf, Firewall, FirewallRule, LoadBalancer, NatGateway, NfVerdict,
    NetworkFunction, OP_PROCESS,
};

fn ip(a: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, a)
}

fn main() {
    println!("=== guarded service chain ===\n");
    let mut testbed = TestbedBuilder::new(b"service chain").build();
    testbed.attest_host(0).unwrap();

    // Enroll two VNFs that will program the network.
    let mut fw_guard = testbed.deploy_guard(0, "vnf-firewall", 1).unwrap();
    let mut lb_guard = testbed.deploy_guard(0, "vnf-loadbalancer", 1).unwrap();
    testbed.enroll(0, &fw_guard).unwrap();
    testbed.enroll(0, &lb_guard).unwrap();
    println!("[enroll] vnf-firewall and vnf-loadbalancer enrolled via the enclave workflow");

    // The firewall VNF registers the edge switch and installs its policy
    // flows through its in-enclave TLS session.
    let fw_session = testbed.open_session(&mut fw_guard).unwrap();
    fw_guard
        .request(
            fw_session,
            &Request::post("/wm/core/switch/register").with_json(
                &Json::object()
                    .with("dpid", "0000000000000e11")
                    .with("ports", vec![Json::from(1i64), Json::from(2i64), Json::from(3i64)]),
            ),
        )
        .unwrap();
    let specs = [
        FlowSpec {
            name: "fw-allow-dns".into(),
            dpid: 0xe11,
            priority: 200,
            matcher: FlowMatch::any().with_protocol(Protocol::Udp).to_tp_port(53),
            actions: vec![FlowAction::Output(2)],
        },
        FlowSpec {
            name: "fw-allow-https".into(),
            dpid: 0xe11,
            priority: 200,
            matcher: FlowMatch::any().with_protocol(Protocol::Udp).to_tp_port(443),
            actions: vec![FlowAction::Output(2)],
        },
        FlowSpec {
            name: "fw-default-drop".into(),
            dpid: 0xe11,
            priority: 1,
            matcher: FlowMatch::any(),
            actions: vec![FlowAction::Drop],
        },
    ];
    for spec in &specs {
        let response = fw_guard
            .request(
                fw_session,
                &Request::post("/wm/staticflowpusher/json").with_json(&spec.to_json()),
            )
            .unwrap();
        assert!(response.status.is_success());
    }
    println!("[flows]  firewall policy installed via north-bound API: {} flows", specs.len());

    // The controller syncs the flows onto the actual dataplane switch.
    let mut switch = Switch::new(0xe11, vec![1, 2, 3]);
    testbed.controller.state().read().sync_switch(&mut switch);
    println!("[sync]   switch 0xe11 programmed with {} entries", switch.flow_table().len());

    // Traffic through the switch.
    let dns = build_udp_frame(MacAddr([1; 6]), MacAddr([2; 6]), ip(1), ip(9), 40000, 53, b"query");
    let telnet = build_udp_frame(MacAddr([1; 6]), MacAddr([2; 6]), ip(1), ip(9), 40000, 23, b"root");
    let out = switch.receive(1, &dns);
    assert_eq!(out.transmit.len(), 1);
    let out_blocked = switch.receive(1, &telnet);
    assert!(out_blocked.transmit.is_empty());
    println!("[switch] DNS forwarded to port {}, telnet dropped by policy", 2);

    // The NF pipeline behind the switch: NAT then load balancer.
    let mut nat = NatGateway::new(ip(9), ip(100));
    let mut lb = LoadBalancer::new(ip(100), vec![ip(101), ip(102), ip(103)]);
    let mut served = std::collections::BTreeMap::new();
    for client in 1..=9u8 {
        let frame = build_udp_frame(
            MacAddr([client; 6]),
            MacAddr([2; 6]),
            ip(client),
            ip(9),
            50000 + client as u16,
            443,
            b"req",
        );
        let NfVerdict::Forward(frame) = nat.process(&frame) else { panic!("nat dropped") };
        let NfVerdict::Forward(frame) = lb.process(&frame) else { panic!("lb dropped") };
        let eth = EthernetFrame::parse(&frame).unwrap();
        let packet = Ipv4Packet::parse(&eth.payload).unwrap();
        *served.entry(packet.dst).or_insert(0u32) += 1;
    }
    println!("[chain]  9 flows NAT'd {} times and balanced across backends: {:?}", nat.translated(), served);
    assert_eq!(served.len(), 3, "all backends used");

    // Trusted-Click variant: the same firewall runs inside an enclave.
    let platform = &testbed.hosts[0].platform;
    let author = EnclaveAuthor::from_seed(&[77; 32]);
    let enclave_fw = load_enclave_nf(
        platform,
        &author,
        Firewall::default_deny(vec![FirewallRule::allow().port(53)]),
    )
    .unwrap();
    let verdict = decode_verdict(&enclave_fw.ecall(OP_PROCESS, &dns).unwrap()).unwrap();
    assert!(matches!(verdict, NfVerdict::Forward(_)));
    let verdict = decode_verdict(&enclave_fw.ecall(OP_PROCESS, &telnet).unwrap()).unwrap();
    assert_eq!(verdict, NfVerdict::Drop);
    println!(
        "[tee-nf] enclave-resident firewall produced identical verdicts ({} ecalls paid)",
        platform.ecall_count()
    );

    // The load balancer VNF reads the audit trail over its own session.
    let lb_session = testbed.open_session(&mut lb_guard).unwrap();
    let audit = lb_guard
        .request(lb_session, &Request::get("/wm/core/audit/json"))
        .unwrap()
        .parse_json()
        .unwrap();
    let pushes = audit
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e.get("action").and_then(Json::as_str) == Some("push_flow"))
        .count();
    println!("[audit]  controller records {pushes} authenticated flow pushes");

    println!("\nService chain complete: policy programmed over guarded credentials, packets flowing.");
}
